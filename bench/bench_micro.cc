// Micro-benchmarks (google-benchmark): the substrate's hot paths.
//
// These are engineering benchmarks, not paper experiments: generator
// throughput (Batagelj–Brandes), verifier cost, treap rotations, and the
// sequential solver — the pieces that bound how large the simulated
// experiments can go.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/path_treap.h"
#include "core/sequential.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/hamiltonian.h"

namespace {

using namespace dhc;

void BM_GnpGeneration(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const double p = graph::edge_probability(n, 3.0, 0.5);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    support::Rng rng(seed++);
    const auto g = graph::gnp(n, p, rng);
    benchmark::DoNotOptimize(g.m());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GnpGeneration)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_VerifyCycleIncidence(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  support::Rng rng(7);
  const auto g = graph::gnp(n, graph::edge_probability(n, 4.0, 1.0), rng);
  // Build a planted cycle over a complete overlay to guarantee validity.
  graph::CycleOrder order;
  order.order.resize(n);
  std::iota(order.order.begin(), order.order.end(), 0);
  auto edges = g.edges();
  const auto extra = graph::cycle_edges(order);
  edges.insert(edges.end(), extra.begin(), extra.end());
  const graph::Graph g2(n, edges);
  const auto inc = graph::incidence_from_order(order);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::verify_cycle_incidence(g2, inc).ok());
  }
}
BENCHMARK(BM_VerifyCycleIncidence)->Arg(1024)->Arg(8192);

void BM_TreapRotations(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  core::PathTreap treap(n, 3);
  for (graph::NodeId v = 0; v < n; ++v) treap.append(v);
  support::Rng rng(5);
  for (auto _ : state) {
    const auto j = static_cast<std::uint32_t>(1 + rng.below(n - 1));
    treap.rotate_suffix(j);
    benchmark::DoNotOptimize(treap.at(n));
  }
}
BENCHMARK(BM_TreapRotations)->Arg(1024)->Arg(65536);

void BM_SequentialRotationSolver(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  support::Rng grng(11);
  const auto g = graph::gnp(n, graph::edge_probability(n, 6.0, 1.0), grng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    support::Rng rng(seed++);
    const auto r = core::rotation_hamiltonian_cycle(g, rng);
    benchmark::DoNotOptimize(r.success);
  }
}
BENCHMARK(BM_SequentialRotationSolver)->Arg(1024)->Arg(8192);

void BM_BfsDiameter(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  support::Rng grng(13);
  const auto g = graph::gnp(n, graph::edge_probability(n, 3.0, 1.0), grng);
  support::Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::estimated_diameter(g, rng, 2));
  }
}
BENCHMARK(BM_BfsDiameter)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
