// EXP-L11: BFS-tree balance in the Upcast regime.
//
// Lemmas 11–15 (p = Θ(log n/√n), diameter 2): |L1| ≈ c·√n·log n, L2 holds
// the rest, and every L1 node has Θ(√n · log n / ...) ... children within
// constant factors of each other.  Lemma 18 generalizes: |Γi| ≤ (1+δ)(np)^i.
// This balance is why upcast congestion divides evenly (Lemma 16).  We build
// the tree and measure level sizes and the child-count spread.
//
// Instances come from the runner's scenario expansion (scenario_from_spec →
// expand → make_trial_instance), the same path dhc_run and the bench presets
// use — this binary declares a Scenario instead of rolling its own seeding,
// so its graphs are exactly the trials a `--algos=upcast` sweep of the same
// spec would run on.
//
// Flags: --sizes=..., --seeds=N, --c=X.
#include <map>

#include "bench_util.h"
#include "congest/setup.h"
#include "graph/algorithms.h"
#include "runner/scenario.h"
#include "runner/trial_runner.h"

namespace {

using namespace dhc;

class SetupOnly : public congest::Protocol {
 public:
  explicit SetupOnly(graph::NodeId n) : setup(n, 1) {}
  void begin(congest::Context&) override {}
  void step(congest::Context& ctx) override { setup.step(ctx); }
  bool on_quiescence(congest::Network& net) override {
    if (setup.done()) return false;
    setup.advance(net);
    return !setup.done();
  }
  congest::SetupComponent setup;
};

}  // namespace

int main(int argc, char** argv) {
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 2.0);
  const auto sizes = cli.get_int_list("sizes", {1024, 2048, 4096});

  bench::banner("EXP-L11",
                "Lemmas 11-15/18: the BFS tree of G(n, c log n / sqrt n) is balanced: "
                "|L1| ~ c sqrt(n) log n, child counts within constant factors",
                "c = " + support::Table::num(c, 1) + ", seeds = " + std::to_string(seeds));

  // The experiment as a declarative scenario — the δ = 1/2 Upcast regime.
  runner::Scenario scenario;
  scenario.name = "exp-l11-bfs-balance";
  scenario.algos = {runner::Algorithm::kUpcast};
  scenario.family = runner::GraphFamily::kGnp;
  scenario.sizes = sizes;
  scenario.deltas = {0.5};
  scenario.cs = {c};
  scenario.seeds = seeds;
  scenario.base_seed = 70;
  const auto trials = runner::expand(scenario);

  support::Table table({"n", "depth", "|L1|", "c sqrt(n) ln n", "|L2|", "max children L1",
                        "mean children L1", "max/mean"});
  bool balanced = true;
  std::map<graph::NodeId, bool> reported;  // one representative trial per n
  for (const auto& tc : trials) {
    if (reported[tc.n]) continue;
    const auto g = runner::make_trial_instance(tc);
    if (!graph::is_connected(g)) continue;
    reported[tc.n] = true;
    const auto n = tc.n;
    congest::NetworkConfig cfg;
    cfg.seed = tc.algo_seed;
    congest::Network net(g, cfg);
    SetupOnly protocol(n);
    net.run(protocol);
    const auto& setup = protocol.setup;

    std::uint64_t l1 = 0;
    std::uint64_t l2 = 0;
    std::uint64_t max_children = 0;
    std::uint64_t l1_children_total = 0;
    std::uint32_t depth = setup.tree_depth(0);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (setup.level(v) == 1) {
        ++l1;
        const auto kids = setup.children(v).size();
        max_children = std::max<std::uint64_t>(max_children, kids);
        l1_children_total += kids;
      } else if (setup.level(v) == 2) {
        ++l2;
      }
    }
    const double theory_l1 =
        c * std::sqrt(static_cast<double>(n)) * std::log(static_cast<double>(n));
    const double mean_children =
        l1 > 0 ? static_cast<double>(l1_children_total) / static_cast<double>(l1) : 0.0;
    const double spread = mean_children > 0 ? static_cast<double>(max_children) / mean_children
                                            : 0.0;
    // Child-count spread is the load imbalance the upcast pays for; it
    // shrinks with n (Chernoff over larger subtrees).
    if (n >= 4096 && spread > 8.0) balanced = false;
    table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                   support::Table::num(std::uint64_t{depth}), support::Table::num(l1),
                   support::Table::num(theory_l1, 0), support::Table::num(l2),
                   support::Table::num(max_children), support::Table::num(mean_children, 1),
                   support::Table::num(spread, 2)});
  }
  table.print(std::cout);

  bench::verdict(balanced,
                 "|L1| tracks c sqrt(n) log n, depth stays 2-3, and the child spread narrows "
                 "with n — the balance behind Lemma 16's congestion bound");
  return 0;
}
