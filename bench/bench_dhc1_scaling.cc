// EXP-T1 (+ Fig. 1): DHC1's round complexity in the p = c·ln n / √n regime.
//
// Theorem 1: DHC1 builds a Hamiltonian cycle with probability 1 − O(1/n) in
// O(√n · ln²n / ln ln n) rounds.  We sweep n, report measured rounds and the
// normalization rounds / (√n · ln²n / ln ln n) — the claim is that the
// normalized column is bounded by a constant — plus Fig. 1's phase split
// (Phase 1 sub-cycles vs Phase 2 hypernode stitching).
//
// Flags: --sizes=..., --seeds=N, --c=X.
#include "bench_util.h"
#include "core/dhc1.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 2.5);
  const auto sizes = cli.get_int_list("sizes", {512, 1024, 2048, 4096});

  bench::banner("EXP-T1 / Fig. 1",
                "Theorem 1: DHC1 runs in O(sqrt(n) ln^2 n / ln ln n) rounds whp",
                "p = c ln n / sqrt(n), c = " + support::Table::num(c, 1) +
                    ", seeds = " + std::to_string(seeds));

  support::Table table({"n", "K", "median rounds", "normalized", "phase1 rounds", "phase2 rounds",
                        "success"});
  std::vector<double> ns;
  std::vector<double> rounds_series;
  std::vector<double> normalized_series;
  for (const auto size : sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    std::vector<double> rounds;
    std::vector<double> phase1;
    std::vector<double> phase2;
    double colors = 0;
    int successes = 0;
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      const auto g = bench::make_instance(n, c, 0.5, s);
      const auto r = core::run_dhc1(g, s * 101 + 13);
      colors = r.stat("num_colors");
      if (!r.success) continue;
      ++successes;
      rounds.push_back(static_cast<double>(r.metrics.rounds));
      phase1.push_back(static_cast<double>(r.metrics.phase_rounds("dra")));
      phase2.push_back(static_cast<double>(r.metrics.phase_rounds("hyper")));
    }
    if (rounds.empty()) continue;
    const double med = support::quantile(rounds, 0.5);
    const double normalized =
        med / (std::sqrt(static_cast<double>(n)) * bench::polylog_factor(static_cast<double>(n)));
    ns.push_back(static_cast<double>(n));
    rounds_series.push_back(med);
    normalized_series.push_back(normalized);
    table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                   support::Table::num(colors, 0), support::Table::num(med, 0),
                   support::Table::num(normalized, 3),
                   support::Table::num(support::quantile(phase1, 0.5), 0),
                   support::Table::num(support::quantile(phase2, 0.5), 0),
                   std::to_string(successes) + "/" + std::to_string(seeds)});
  }
  table.print(std::cout);

  bool ok = ns.size() >= 2;
  double slope = 0.0;
  double residual = 0.0;
  if (ok) {
    slope = support::loglog_slope(ns, rounds_series);
    // After dividing out the claimed √n·ln²n/ln ln n, only constant-level
    // drift may remain.
    residual = support::loglog_slope(ns, normalized_series);
    ok = residual < 0.3;
  }
  bench::verdict(ok, "raw log-log slope " + support::Table::num(slope, 2) +
                         "; residual slope after dividing by sqrt(n) ln^2 n / ln ln n = " +
                         support::Table::num(residual, 2) +
                         " (≈0 means the Theorem 1 bound explains the growth)");
  return 0;
}
