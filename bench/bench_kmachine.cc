// EXP-K1 (extension, paper §IV): DHC2 in the k-machine model.
//
// "Our fully-distributed algorithms can be used to obtain efficient
// algorithms in other distributed message-passing models such as the
// k-machine model [16]."  We run DHC2 once per graph, price the execution
// under a random vertex partition over k machines with per-link bandwidth
// B messages/round (direct simulation), and sweep k: converted rounds must
// fall as machines are added, because the same cross traffic spreads over
// Θ(k²) links.
//
// Flags: --n=..., --ks=..., --bandwidth=B, --seeds=N, --c=X.
#include "bench_util.h"
#include "kmachine/kmachine.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 2.5);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 2048));
  const auto ks = cli.get_int_list("ks", {4, 8, 16, 32});
  const auto bandwidth = static_cast<std::uint64_t>(cli.get_int("bandwidth", 16));

  bench::banner("EXP-K1",
                "paper SS IV: DHC2 converts to the k-machine model; more machines => "
                "fewer converted rounds (traffic spreads over Theta(k^2) links)",
                "n = " + std::to_string(n) + ", per-link bandwidth = " +
                    std::to_string(bandwidth) + " msgs/round, seeds = " + std::to_string(seeds));

  support::Table table({"k", "congest rounds", "k-machine rounds", "cross msgs", "local msgs",
                        "success"});
  std::vector<double> converted;
  for (const auto k : ks) {
    std::vector<double> km_rounds;
    std::vector<double> cg_rounds;
    std::vector<double> cross;
    std::vector<double> local;
    int ok = 0;
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      const auto g = bench::make_instance(n, c, 0.5, s + 770);
      core::Dhc2Config cfg;
      cfg.delta = 0.5;
      const auto r = kmachine::convert_dhc2(g, s * 71 + 3, static_cast<std::uint32_t>(k),
                                            bandwidth, cfg);
      if (!r.success) continue;
      ++ok;
      km_rounds.push_back(static_cast<double>(r.kmachine_rounds));
      cg_rounds.push_back(static_cast<double>(r.congest_rounds));
      cross.push_back(static_cast<double>(r.cross_messages));
      local.push_back(static_cast<double>(r.local_messages));
    }
    if (km_rounds.empty()) continue;
    const double med = support::quantile(km_rounds, 0.5);
    converted.push_back(med);
    table.add_row({support::Table::num(static_cast<std::uint64_t>(k)),
                   support::Table::num(support::quantile(cg_rounds, 0.5), 0),
                   support::Table::num(med, 0),
                   support::Table::num(support::quantile(cross, 0.5), 0),
                   support::Table::num(support::quantile(local, 0.5), 0),
                   std::to_string(ok) + "/" + std::to_string(seeds)});
  }
  table.print(std::cout);

  const bool falling = converted.size() >= 2 && converted.back() < converted.front();
  bench::verdict(falling,
                 "converted rounds fall monotonically with k — the conversion the paper's "
                 "SS IV promises, measured");
  return 0;
}
