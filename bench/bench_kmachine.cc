// EXP-K1 (extension, paper §IV): CONGEST algorithms in the k-machine model.
//
// "Our fully-distributed algorithms can be used to obtain efficient
// algorithms in other distributed message-passing models such as the
// k-machine model [16]."  For each selected algorithm we run the CONGEST
// execution once per graph through the k-machine backend — a random vertex
// partition over k machines, per-link bandwidth B messages/round, priced by
// direct simulation — and sweep k: converted rounds must fall as machines
// are added, because the same cross traffic spreads over Θ(k²) links.
//
// Flags: --algos=dhc2,turau,... (dra|dhc1|dhc2|turau|upcast|collect-all),
//        --n=..., --ks=..., --bandwidth=B, --seeds=N, --c=X, --delta=D.
#include "bench_util.h"
#include "kmachine/kmachine.h"

#include <stdexcept>

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 2.5);
  const double delta = cli.get_double("delta", 0.5);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 2048));
  const auto ks = cli.get_int_list("ks", {4, 8, 16, 32});
  const auto bandwidth = static_cast<std::uint64_t>(cli.get_int("bandwidth", 16));

  std::vector<std::string> algos;
  try {
    algos = cli.get_string_list("algos", {"dhc2"});
    for (const auto& name : algos) {
      if (name == "sequential" || name == "seq") {
        throw std::invalid_argument("'sequential' has no CONGEST execution to price");
      }
      (void)kmachine::algorithm_by_name(name);
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "bench_kmachine: " << e.what() << "\n";
    return 2;
  }

  bench::banner("EXP-K1",
                "paper SS IV: the fully-distributed algorithms convert to the k-machine "
                "model; more machines => fewer converted rounds (traffic spreads over "
                "Theta(k^2) links)",
                "n = " + std::to_string(n) + ", per-link bandwidth = " +
                    std::to_string(bandwidth) + " msgs/round, seeds = " + std::to_string(seeds));

  support::Table table({"algo", "k", "congest rounds", "k-machine rounds", "cross msgs",
                        "local msgs", "peak link", "success"});
  bool all_falling = true;
  for (const auto& algo_name : algos) {
    kmachine::CongestAlgorithm algo;
    if (algo_name == "dhc2") {
      core::Dhc2Config cfg;
      cfg.delta = delta;
      algo = kmachine::dhc2_algorithm(cfg);
    } else {
      algo = kmachine::algorithm_by_name(algo_name);
    }
    std::vector<double> converted;
    for (const auto k : ks) {
      std::vector<double> km_rounds;
      std::vector<double> cg_rounds;
      std::vector<double> cross;
      std::vector<double> local;
      std::vector<double> peak;
      int ok = 0;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        const auto g = bench::make_instance(n, c, delta, s + 770);
        kmachine::KMachineConfig kcfg;
        kcfg.k = static_cast<std::uint32_t>(k);
        kcfg.bandwidth = bandwidth;
        const auto out = kmachine::run_kmachine(algo, g, s * 71 + 3, kcfg);
        const auto& r = out.report;
        if (!r.success) continue;
        ++ok;
        km_rounds.push_back(static_cast<double>(r.kmachine_rounds));
        cg_rounds.push_back(static_cast<double>(r.congest_rounds));
        cross.push_back(static_cast<double>(r.cross_messages));
        local.push_back(static_cast<double>(r.local_messages));
        peak.push_back(static_cast<double>(r.busiest_link_peak));
      }
      if (km_rounds.empty()) continue;
      const double med = support::quantile(km_rounds, 0.5);
      converted.push_back(med);
      table.add_row({algo_name, support::Table::num(static_cast<std::uint64_t>(k)),
                     support::Table::num(support::quantile(cg_rounds, 0.5), 0),
                     support::Table::num(med, 0),
                     support::Table::num(support::quantile(cross, 0.5), 0),
                     support::Table::num(support::quantile(local, 0.5), 0),
                     support::Table::num(support::quantile(peak, 0.5), 0),
                     std::to_string(ok) + "/" + std::to_string(seeds)});
    }
    const bool falling = converted.size() >= 2 && converted.back() < converted.front();
    all_falling = all_falling && falling;
  }
  table.print(std::cout);

  bench::verdict(all_falling,
                 "converted rounds fall with k for every selected algorithm — the "
                 "conversion the paper's SS IV promises, measured by the execution backend");
  return 0;
}
