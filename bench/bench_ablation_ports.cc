// EXP-A2 (ablation): DHC1's wrong-port rejection rate.
//
// DESIGN.md §2.1: the paper's Phase-2 analysis treats the hypernode graph
// as undirected, but a rotation is only realizable when the discovered
// physical edge lands on the hypernode's suffix-facing port — roughly a
// coin flip.  Our implementation rejects-and-redraws; this ablation measures
// the reject fraction and the step overhead, confirming it is the constant
// factor the reproduction absorbs (not an asymptotic change).
//
// Flags: --sizes=..., --seeds=N, --c=X.
#include "bench_util.h"
#include "core/dhc1.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 5));
  const double c = cli.get_double("c", 2.5);
  const auto sizes = cli.get_int_list("sizes", {512, 1024, 2048, 4096});

  bench::banner("EXP-A2",
                "ablation: hypernode port discipline (DESIGN.md SS2.1) — wrong-port "
                "rejections are a bounded constant fraction of Phase-2 steps",
                "p = c ln n / sqrt n, c = " + support::Table::num(c, 1) +
                    ", seeds = " + std::to_string(seeds));

  support::Table table({"n", "K", "hyper steps", "rejects", "reject fraction", "restarts",
                        "success"});
  std::vector<double> fractions;
  for (const auto size : sizes) {
    const auto n = static_cast<graph::NodeId>(size);
    std::vector<double> steps;
    std::vector<double> rejects;
    std::vector<double> restarts;
    double colors = 0;
    int ok = 0;
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      const auto g = bench::make_instance(n, c, 0.5, s + 450);
      const auto r = core::run_dhc1(g, s * 53 + 21);
      colors = r.stat("num_colors");
      if (!r.success) continue;
      ++ok;
      steps.push_back(r.stat("hyper_steps"));
      rejects.push_back(r.stat("wrong_port_rejects"));
      restarts.push_back(r.stat("hyper_restarts"));
    }
    if (steps.empty()) continue;
    const double st = support::quantile(steps, 0.5);
    const double rj = support::quantile(rejects, 0.5);
    fractions.push_back(rj / std::max(1.0, st));
    table.add_row({support::Table::num(static_cast<std::uint64_t>(n)),
                   support::Table::num(colors, 0), support::Table::num(st, 0),
                   support::Table::num(rj, 0), support::Table::num(rj / std::max(1.0, st), 2),
                   support::Table::num(support::quantile(restarts, 0.5), 0),
                   std::to_string(ok) + "/" + std::to_string(seeds)});
  }
  table.print(std::cout);

  const double worst =
      fractions.empty() ? 1.0 : *std::max_element(fractions.begin(), fractions.end());
  bench::verdict(worst < 0.75,
                 "wrong-port rejections stay a bounded fraction (~1/2) of hypernode steps "
                 "across n — a constant-factor overhead, as argued in DESIGN.md");
  return 0;
}
