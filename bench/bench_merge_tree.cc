// EXP-L8 (+ Fig. 3): DHC2's merge tree level by level.
//
// Lemmas 8/9: every one of the ⌈log₂ K⌉ merge levels succeeds whp, with the
// failure probability shrinking as cycles grow.  Per level we report the
// bridges built (must equal the number of cycle pairs) and the bridge
// candidates discovered (growing with cycle size — the slack behind
// Lemma 8's "very high probability").
//
// Flags: --n=..., --seeds=N, --c=X, --delta=X.
#include "bench_util.h"
#include "core/dhc2.h"

int main(int argc, char** argv) {
  using namespace dhc;
  const support::Cli cli(argc, argv);
  const auto seeds = static_cast<std::uint64_t>(cli.get_int("seeds", 3));
  const double c = cli.get_double("c", 2.5);
  const double delta = cli.get_double("delta", 0.5);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 4096));

  bench::banner("EXP-L8 / Fig. 3",
                "Lemmas 8/9: all O(log n) merge levels succeed whp; "
                "candidate bridges grow with cycle size",
                "n = " + std::to_string(n) + ", delta = " + support::Table::num(delta, 2) +
                    ", c = " + support::Table::num(c, 1) + ", seeds = " + std::to_string(seeds));

  // Accumulate per-level medians.
  std::vector<std::vector<double>> bridges_by_level;
  std::vector<std::vector<double>> cands_by_level;
  int successes = 0;
  double expected_levels = 0;
  for (std::uint64_t s = 1; s <= seeds; ++s) {
    const auto g = bench::make_instance(n, c, delta, s + 40);
    core::Dhc2Config cfg;
    cfg.delta = delta;
    const auto r = core::run_dhc2(g, s * 97 + 3, cfg);
    expected_levels = r.stat("merge_levels");
    if (!r.success) continue;
    ++successes;
    const auto it = r.series.find("bridges_per_level");
    const auto ct = r.series.find("candidates_per_level");
    if (it == r.series.end() || ct == r.series.end()) continue;
    bridges_by_level.resize(std::max(bridges_by_level.size(), it->second.size()));
    cands_by_level.resize(std::max(cands_by_level.size(), ct->second.size()));
    for (std::size_t l = 0; l < it->second.size(); ++l) bridges_by_level[l].push_back(it->second[l]);
    for (std::size_t l = 0; l < ct->second.size(); ++l) cands_by_level[l].push_back(ct->second[l]);
  }

  support::Table table({"level", "pairs to merge", "median bridges", "median candidates",
                        "candidates/bridge"});
  const auto k = static_cast<std::uint32_t>(
      std::llround(std::pow(static_cast<double>(n), 1.0 - delta)));
  std::uint32_t cycles = k;
  bool all_merged = successes > 0;
  for (std::size_t l = 0; l < bridges_by_level.size(); ++l) {
    const std::uint32_t pairs = cycles / 2;
    const double bridges = support::quantile(bridges_by_level[l], 0.5);
    const double cands =
        l < cands_by_level.size() ? support::quantile(cands_by_level[l], 0.5) : 0.0;
    if (bridges < pairs) all_merged = false;
    table.add_row({support::Table::num(static_cast<std::uint64_t>(l + 1)),
                   support::Table::num(std::uint64_t{pairs}), support::Table::num(bridges, 1),
                   support::Table::num(cands, 0),
                   support::Table::num(bridges > 0 ? cands / bridges : 0.0, 1)});
    cycles = (cycles + 1) / 2;
  }
  table.print(std::cout);
  std::cout << "\nruns fully merged: " << successes << "/" << seeds << " (levels = "
            << expected_levels << ")\n";

  bench::verdict(all_merged,
                 "every level merges all its pairs and the candidate surplus grows with cycle "
                 "size — Lemma 8/9's failure probability visibly shrinks per level");
  return 0;
}
