// Shared helpers for the experiment harness (bench/ binaries).
//
// Every experiment binary prints: the experiment id and the paper claim it
// reproduces, an aligned table of measured series, and a one-line verdict
// tying the measurement back to the claim.  All runs are seeded and
// deterministic; medians are taken across seeds.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "support/cli.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

namespace dhc::bench {

/// ln²n / ln ln n — the polylog factor in Theorems 1 and 10.
inline double polylog_factor(double n) {
  const double ln = std::log(n);
  return ln * ln / std::log(ln);
}

/// Prints the experiment banner: id, claim, and parameters.
inline void banner(const std::string& exp_id, const std::string& claim,
                   const std::string& params) {
  std::cout << "=== " << exp_id << " ===\n";
  std::cout << "claim:  " << claim << "\n";
  std::cout << "params: " << params << "\n\n";
}

/// Runs `trial(seed)` for `seeds` seeds and returns all values.
inline std::vector<double> across_seeds(std::uint64_t seeds,
                                        const std::function<double(std::uint64_t)>& trial) {
  std::vector<double> values;
  values.reserve(seeds);
  for (std::uint64_t s = 1; s <= seeds; ++s) values.push_back(trial(s));
  return values;
}

/// Median across seeds.
inline double median_across_seeds(std::uint64_t seeds,
                                  const std::function<double(std::uint64_t)>& trial) {
  return support::quantile(across_seeds(seeds, trial), 0.5);
}

/// One-line verdict.
inline void verdict(bool ok, const std::string& text) {
  std::cout << "\nverdict: " << (ok ? "PASS — " : "CHECK — ") << text << "\n\n";
}

/// A G(n, p) instance with p = c·ln n / n^δ, seeded deterministically.
inline graph::Graph make_instance(graph::NodeId n, double c, double delta, std::uint64_t seed) {
  support::Rng rng(seed * 7919 + n);
  return graph::gnp(n, graph::edge_probability(n, c, delta), rng);
}

}  // namespace dhc::bench
